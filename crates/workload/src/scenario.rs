//! Experiment scenario construction.
//!
//! A [`Scenario`] bundles everything §IV fixes about a run — population,
//! chunk stream shape, capacities, optional churn — and installs itself into
//! any protocol's simulator: it creates the nodes with the right link
//! capacities and schedules every join and leave. The protocol itself is
//! supplied by the caller (`dco-core` or `dco-baselines`).

use dco_sim::engine::{Protocol, Simulator};
use dco_sim::msg::SizeBits;
use dco_sim::node::NodeId;
use dco_sim::time::{SimDuration, SimTime};

use crate::arrivals::ArrivalPattern;
use crate::caps::CapsProfile;
use crate::churn::{ChurnConfig, ChurnEvent, ChurnSchedule};

/// A complete experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Total nodes including the server (node 0).
    pub n_nodes: u32,
    /// Number of chunks the server emits.
    pub n_chunks: u32,
    /// Chunk payload size (300 kb in the paper).
    pub chunk_size: SizeBits,
    /// Interval between chunk emissions (1 s in the paper).
    pub chunk_interval: SimDuration,
    /// Capacity profile.
    pub caps: CapsProfile,
    /// Optional churn configuration (none = static network).
    pub churn: Option<ChurnConfig>,
    /// Join schedule for the churn-free case (ignored when churn is
    /// enabled — the churn schedule then owns every join/leave).
    pub arrivals: ArrivalPattern,
    /// Run horizon: events past this instant are not scheduled and
    /// measurements stop here.
    pub horizon: SimTime,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// The paper's default no-churn setting: 512 nodes, 100 chunks of
    /// 300 kb at 1/s, 4000/600 kbps capacities.
    pub fn paper_default(seed: u64) -> Self {
        Scenario {
            n_nodes: 512,
            n_chunks: 100,
            chunk_size: SizeBits::from_kilobits(300),
            chunk_interval: SimDuration::from_secs(1),
            caps: CapsProfile::PaperDefault,
            churn: None,
            arrivals: ArrivalPattern::AllAtOnce,
            horizon: SimTime::from_secs(200),
            seed,
        }
    }

    /// The paper's churn setting (Figs. 11–12): 200 chunks, 300 s budget.
    pub fn paper_churn(mean_life_secs: u64, seed: u64) -> Self {
        Scenario {
            n_chunks: 200,
            horizon: SimTime::from_secs(300),
            churn: Some(ChurnConfig::paper_fig12(mean_life_secs)),
            ..Scenario::paper_default(seed)
        }
    }

    /// The server's node id.
    pub fn server(&self) -> NodeId {
        NodeId(0)
    }

    /// When chunk `seq` is generated.
    pub fn chunk_time(&self, seq: u32) -> SimTime {
        SimTime::ZERO + self.chunk_interval * u64::from(seq)
    }

    /// Generates the churn schedule for this scenario (empty when churn is
    /// disabled). The server never churns.
    pub fn churn_schedule(&self) -> ChurnSchedule {
        match &self.churn {
            None => ChurnSchedule::default(),
            Some(cfg) => ChurnSchedule::generate(1, self.n_nodes - 1, self.horizon, cfg, self.seed),
        }
    }

    /// Creates all nodes in `sim` and schedules every join/leave. Returns
    /// the churn schedule used (empty when churn is disabled).
    pub fn install<P: Protocol>(&self, sim: &mut Simulator<P>) -> ChurnSchedule {
        self.add_nodes(sim);
        self.schedule_membership(sim)
    }

    /// Creates all nodes in `sim` without scheduling anything. Sharded
    /// runs call this, then `Simulator::enable_sharding` (which must see
    /// the full node table but no events), then
    /// [`Scenario::schedule_membership`]; `install` is the two back to
    /// back.
    pub fn add_nodes<P: Protocol>(&self, sim: &mut Simulator<P>) {
        for i in 0..self.n_nodes {
            let id = sim.add_node(self.caps.caps_for(i));
            debug_assert_eq!(id, NodeId(i));
        }
    }

    /// Schedules every join/leave for nodes already created by
    /// [`Scenario::add_nodes`]. Returns the churn schedule used (empty
    /// when churn is disabled).
    pub fn schedule_membership<P: Protocol>(&self, sim: &mut Simulator<P>) -> ChurnSchedule {
        // Server is always up from t = 0 and joins first.
        sim.schedule_join(self.server(), SimTime::ZERO);
        let schedule = self.churn_schedule();
        if self.churn.is_none() {
            // No churn: joins follow the arrival pattern (the paper's
            // setting is everyone at t = 0, right after the server — the
            // calendar is FIFO at equal instants).
            for i in 1..self.n_nodes {
                sim.schedule_join(NodeId(i), self.arrivals.join_time(NodeId(i), self.n_nodes));
            }
        } else {
            for (node, seq) in &schedule.events {
                for e in seq {
                    match *e {
                        ChurnEvent::Join(at) => sim.schedule_join(*node, at),
                        ChurnEvent::Leave(at, graceful) => sim.schedule_leave(*node, at, graceful),
                    }
                }
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_sim::engine::Ctx;
    use dco_sim::net::NetConfig;

    /// A protocol that just counts joins and leaves.
    #[derive(Default)]
    struct Census {
        joins: usize,
        leaves: usize,
    }

    impl Protocol for Census {
        type Msg = ();
        type Timer = ();
        fn on_join(&mut self, _: NodeId, _: &mut Ctx<'_, Self>) {
            self.joins += 1;
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_timer(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_leave(&mut self, _: NodeId, _: bool, _: &mut Ctx<'_, Self>) {
            self.leaves += 1;
        }
    }

    #[test]
    fn paper_default_parameters() {
        let s = Scenario::paper_default(1);
        assert_eq!(s.n_nodes, 512);
        assert_eq!(s.n_chunks, 100);
        assert_eq!(s.chunk_size.kilobits(), 300);
        assert_eq!(s.chunk_interval, SimDuration::from_secs(1));
        assert!(s.churn.is_none());
        assert_eq!(s.chunk_time(0), SimTime::ZERO);
        assert_eq!(s.chunk_time(99), SimTime::from_secs(99));
    }

    #[test]
    fn static_install_brings_everyone_up() {
        let s = Scenario {
            n_nodes: 32,
            ..Scenario::paper_default(3)
        };
        let mut sim = Simulator::new(Census::default(), NetConfig::default(), s.seed);
        let schedule = s.install(&mut sim);
        assert!(schedule.events.is_empty());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.protocol().joins, 32);
        assert_eq!(sim.alive_count(), 32);
    }

    #[test]
    fn churn_install_schedules_leaves_and_rejoins() {
        let s = Scenario {
            n_nodes: 64,
            ..Scenario::paper_churn(60, 5)
        };
        let mut sim = Simulator::new(Census::default(), NetConfig::default(), s.seed);
        let schedule = s.install(&mut sim);
        assert!(schedule.total_leaves() > 0);
        sim.run_until(SimTime::from_secs(300));
        let p = sim.protocol();
        assert!(p.joins > 64, "rejoins happened: {}", p.joins);
        assert!(p.leaves > 0);
        assert!(sim.is_alive(NodeId(0)), "server never churns");
    }

    #[test]
    fn churn_schedule_is_deterministic() {
        let s = Scenario::paper_churn(90, 8);
        assert_eq!(s.churn_schedule().events, s.churn_schedule().events);
    }

    #[test]
    fn ramp_arrivals_spread_joins() {
        let s = Scenario {
            n_nodes: 16,
            arrivals: ArrivalPattern::Ramp {
                span: dco_sim::time::SimDuration::from_secs(10),
            },
            ..Scenario::paper_default(4)
        };
        let mut sim = Simulator::new(Census::default(), NetConfig::default(), s.seed);
        s.install(&mut sim);
        sim.run_until(SimTime::from_secs(5));
        let mid = sim.protocol().joins;
        assert!(mid > 1 && mid < 16, "joins mid-ramp: {mid}");
        sim.run_until(SimTime::from_secs(11));
        assert_eq!(sim.protocol().joins, 16);
    }
}
