//! The tree baseline.
//!
//! §IV: "In the tree-based method, the chunks are pushed top-down from the
//! server", with a fixed out-degree per node. The topology is rigid: a
//! parent failure orphans its whole subtree until (and unless) the orphan
//! rejoins — which is exactly the churn fragility Figs. 11–12 measure. The
//! tree generates **zero** extra overhead: data only, no signalling.

use dco_core::buffer::BufferMap;
use dco_core::chunk::ChunkSeq;
use dco_metrics::StreamObserver;
use dco_sim::prelude::*;

use crate::config::BaselineConfig;

/// Tree wire messages (data only — the tree's whole point).
#[derive(Clone, Debug)]
pub enum TreeMsg {
    /// The chunk payload (data class).
    Data {
        /// The chunk carried.
        seq: ChunkSeq,
    },
}

/// Tree timers.
#[derive(Clone, Debug)]
pub enum TreeTimer {
    /// Server: emit the next chunk.
    Generate,
}

struct TreeNode {
    buffer: BufferMap,
}

/// The tree-based streaming baseline.
pub struct TreeProtocol {
    cfg: BaselineConfig,
    /// Out-degree (the paper's default is `neighbors / 8`, min 1).
    degree: usize,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    nodes: Vec<Option<TreeNode>>,
    next_seq: ChunkSeq,
    /// Reception records for the metrics.
    pub obs: StreamObserver,
}

impl TreeProtocol {
    /// Builds a `degree`-ary tree over node indices: node `i`'s parent is
    /// `(i-1)/degree`, so the initial topology is a complete balanced tree
    /// rooted at the server.
    pub fn new(cfg: BaselineConfig, degree: usize) -> Self {
        let degree = degree.max(1);
        let n = cfg.n_nodes as usize;
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for (i, slot) in parent.iter_mut().enumerate().skip(1) {
            let p = (i - 1) / degree;
            *slot = Some(NodeId(p as u32));
            children[p].push(NodeId(i as u32));
        }
        TreeProtocol {
            degree,
            parent,
            children,
            alive: vec![false; n],
            nodes: (0..n).map(|_| None).collect(),
            next_seq: ChunkSeq(0),
            obs: StreamObserver::new(n, cfg.n_chunks as usize),
            cfg,
        }
    }

    /// Builds the tree with the paper's degree rule: out-degree =
    /// `neighbors / 8` (minimum 1).
    pub fn with_paper_degree(cfg: BaselineConfig) -> Self {
        let d = (cfg.neighbors / 8).max(1);
        TreeProtocol::new(cfg, d)
    }

    /// Builds the "tree*" ablation: out-degree = the full neighbor count.
    pub fn with_star_degree(cfg: BaselineConfig) -> Self {
        let d = cfg.neighbors.max(1);
        TreeProtocol::new(cfg, d)
    }

    /// The configured out-degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The parent of `node`, if any.
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// The children of `node`.
    pub fn children_of(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Chunks currently buffered by `node`.
    pub fn held_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()]
            .as_ref()
            .map(|s| s.buffer.held_count())
            .unwrap_or(0)
    }

    fn forward_to_children(&mut self, node: NodeId, seq: ChunkSeq, ctx: &mut Ctx<'_, Self>) {
        for child in self.children[node.index()].clone() {
            ctx.send_data(node, child, TreeMsg::Data { seq }, self.cfg.chunk_size);
        }
    }

    /// Finds an attachment point for a (re)joining node: the first alive
    /// node in BFS order from the root with spare out-degree.
    fn find_attach_point(&self, joiner: NodeId) -> Option<NodeId> {
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        let mut seen = vec![false; self.alive.len()];
        while let Some(n) = queue.pop_front() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            if !self.alive[n.index()] {
                continue;
            }
            if n != joiner && self.children[n.index()].len() < self.degree {
                return Some(n);
            }
            for &c in &self.children[n.index()] {
                queue.push_back(c);
            }
        }
        None
    }
}

impl Protocol for TreeProtocol {
    type Msg = TreeMsg;
    type Timer = TreeTimer;

    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        self.alive[node.index()] = true;
        self.nodes[node.index()] = Some(TreeNode {
            buffer: BufferMap::new(self.cfg.n_chunks),
        });
        if node == NodeId(0) {
            ctx.set_timer(node, SimDuration::ZERO, TreeTimer::Generate);
            return;
        }
        // A re-joining node (no live parent link) attaches as a leaf of the
        // first alive node with spare degree. The initial topology is kept
        // for nodes whose parent slot is intact.
        let needs_attach = match self.parent[node.index()] {
            Some(p) => !self.alive[p.index()] || !self.children[p.index()].contains(&node),
            None => true,
        };
        if needs_attach {
            if let Some(p) = self.parent[node.index()] {
                self.children[p.index()].retain(|&c| c != node);
            }
            if let Some(p) = self.find_attach_point(node) {
                self.parent[node.index()] = Some(p);
                self.children[p.index()].push(node);
            }
        }
    }

    fn on_message(&mut self, node: NodeId, _from: NodeId, msg: TreeMsg, ctx: &mut Ctx<'_, Self>) {
        let TreeMsg::Data { seq } = msg;
        let now = ctx.now();
        let fresh = match self.nodes[node.index()].as_mut() {
            Some(st) => st.buffer.insert(seq),
            None => return,
        };
        if !fresh {
            return;
        }
        self.obs.record_received(seq.0, node, now);
        self.forward_to_children(node, seq, ctx);
    }

    fn on_timer(&mut self, node: NodeId, timer: TreeTimer, ctx: &mut Ctx<'_, Self>) {
        let TreeTimer::Generate = timer;
        let seq = self.next_seq;
        if seq.0 >= self.cfg.n_chunks {
            return;
        }
        self.next_seq = seq.next();
        let now = ctx.now();
        self.obs.record_generated(seq.0, now);
        for i in 1..self.cfg.n_nodes {
            if ctx.is_alive(NodeId(i)) {
                self.obs.mark_expected(seq.0, NodeId(i));
            }
        }
        if let Some(st) = self.nodes[node.index()].as_mut() {
            st.buffer.insert(seq);
        }
        self.forward_to_children(node, seq, ctx);
        if self.next_seq.0 < self.cfg.n_chunks {
            ctx.set_timer(node, self.cfg.chunk_interval, TreeTimer::Generate);
        }
    }

    fn on_leave(&mut self, node: NodeId, _graceful: bool, _ctx: &mut Ctx<'_, Self>) {
        // No repair: the rigid topology is the tree's weakness under churn.
        self.alive[node.index()] = false;
        self.nodes[node.index()] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: u32, chunks: u32, degree: usize, seed: u64) -> Simulator<TreeProtocol> {
        let cfg = BaselineConfig::paper_default(n, chunks);
        let mut sim = Simulator::new(TreeProtocol::new(cfg, degree), NetConfig::default(), seed);
        for i in 0..n {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn topology_is_a_complete_d_ary_tree() {
        let p = TreeProtocol::new(BaselineConfig::paper_default(13, 1), 3);
        assert_eq!(p.parent_of(NodeId(0)), None);
        assert_eq!(p.parent_of(NodeId(1)), Some(NodeId(0)));
        assert_eq!(p.parent_of(NodeId(4)), Some(NodeId(1)));
        assert_eq!(p.children_of(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(p.children_of(NodeId(1)), &[NodeId(4), NodeId(5), NodeId(6)]);
        assert_eq!(p.degree(), 3);
    }

    #[test]
    fn paper_degree_rule() {
        let mut cfg = BaselineConfig::paper_default(8, 1);
        cfg.neighbors = 24;
        assert_eq!(TreeProtocol::with_paper_degree(cfg.clone()).degree(), 3);
        assert_eq!(TreeProtocol::with_star_degree(cfg.clone()).degree(), 24);
        cfg.neighbors = 4;
        assert_eq!(TreeProtocol::with_paper_degree(cfg).degree(), 1, "min 1");
    }

    #[test]
    fn tree_delivers_all_chunks_with_zero_overhead() {
        let mut sim = build(16, 10, 3, 1);
        sim.run_until(SimTime::from_secs(60));
        let p = sim.protocol();
        assert_eq!(p.obs.expected_pairs(), 150);
        assert_eq!(p.obs.received_pairs(), 150);
        assert_eq!(
            sim.counters().control_total(),
            0,
            "the tree must generate no extra overhead"
        );
    }

    #[test]
    fn high_degree_tree_is_slower_per_chunk() {
        // Out-degree beyond the bandwidth budget slows the root's fan-out:
        // each child transfer serializes through the parent's upload pipe.
        let mut narrow = build(32, 6, 2, 3);
        narrow.run_until(SimTime::from_secs(90));
        let mut wide = build(32, 6, 31, 3);
        wide.run_until(SimTime::from_secs(90));
        let d_narrow = narrow
            .protocol()
            .obs
            .mean_mesh_delay(SimTime::from_secs(90));
        let d_wide = wide.protocol().obs.mean_mesh_delay(SimTime::from_secs(90));
        assert!(
            d_wide > d_narrow,
            "degree-31 delay {d_wide:.2}s should exceed degree-2 {d_narrow:.2}s"
        );
    }

    #[test]
    fn parent_failure_orphans_subtree() {
        let mut sim = build(13, 20, 3, 5);
        // Kill node 1 (children 4, 5, 6) early and never rejoin it.
        sim.schedule_leave(NodeId(1), SimTime::from_secs(2), false);
        sim.run_until(SimTime::from_secs(60));
        let p = sim.protocol();
        // Chunks generated after the failure cannot reach the orphans.
        for orphan in [4u32, 5, 6] {
            assert!(
                p.obs.received_at(10, NodeId(orphan)).is_none(),
                "orphan N{orphan} received chunk 10 without a parent"
            );
        }
        // The rest of the tree is unaffected.
        assert!(p.obs.received_at(10, NodeId(2)).is_some());
        assert!(p.obs.received_at(10, NodeId(7)).is_some());
    }

    #[test]
    fn rejoining_node_reattaches() {
        let mut sim = build(13, 30, 3, 6);
        sim.schedule_leave(NodeId(1), SimTime::from_secs(2), false);
        sim.schedule_join(NodeId(1), SimTime::from_secs(10));
        sim.run_until(SimTime::from_secs(60));
        let p = sim.protocol();
        // N1 re-attached somewhere alive and receives post-rejoin chunks.
        assert!(p.parent_of(NodeId(1)).is_some());
        assert!(
            p.obs.received_at(25, NodeId(1)).is_some(),
            "rejoined node should receive fresh chunks"
        );
    }
}
