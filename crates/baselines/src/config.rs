//! Shared configuration for the three baselines.

use dco_sim::msg::SizeBits;
use dco_sim::time::{SimDuration, SimTime};

/// Parameters common to the pull, push and tree baselines (§IV defaults).
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Total nodes including the server (node 0).
    pub n_nodes: u32,
    /// Chunks the server emits.
    pub n_chunks: u32,
    /// Chunk payload size (300 kb).
    pub chunk_size: SizeBits,
    /// Chunk emission interval (1 s).
    pub chunk_interval: SimDuration,
    /// Mesh neighbors per node (pull/push); tree reinterprets this as its
    /// out-degree.
    pub neighbors: usize,
    /// Buffer-map exchange period ("nodes exchange buffer maps with their
    /// neighbors every second").
    pub bufmap_every: SimDuration,
    /// Pull-loop period.
    pub pull_tick: SimDuration,
    /// Pull request timeout.
    pub request_timeout: SimDuration,
    /// Maximum concurrent pull requests per node.
    pub max_inflight: usize,
    /// Upload backlog beyond which pushes are deferred ("once there is
    /// available upload bandwidth").
    pub busy_backlog: SimDuration,
}

impl BaselineConfig {
    /// The paper's §IV defaults.
    pub fn paper_default(n_nodes: u32, n_chunks: u32) -> Self {
        BaselineConfig {
            n_nodes,
            n_chunks,
            chunk_size: SizeBits::from_kilobits(300),
            chunk_interval: SimDuration::from_secs(1),
            neighbors: 32,
            bufmap_every: SimDuration::from_secs(1),
            pull_tick: SimDuration::from_millis(250),
            request_timeout: SimDuration::from_millis(2_000),
            max_inflight: 4,
            busy_backlog: SimDuration::from_millis(1_500),
        }
    }

    /// The newest chunk generated at or before `now` (`None` before the
    /// stream starts).
    pub fn latest_at(&self, now: SimTime) -> Option<u32> {
        if self.n_chunks == 0 || self.chunk_interval.is_zero() {
            return None;
        }
        let k = (now.as_micros() / self.chunk_interval.as_micros()) as u32;
        Some(k.min(self.n_chunks - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_4() {
        let c = BaselineConfig::paper_default(512, 100);
        assert_eq!(c.chunk_size.kilobits(), 300);
        assert_eq!(c.chunk_interval, SimDuration::from_secs(1));
        assert_eq!(c.bufmap_every, SimDuration::from_secs(1));
    }

    #[test]
    fn latest_at_schedule() {
        let c = BaselineConfig::paper_default(8, 10);
        assert_eq!(c.latest_at(SimTime::ZERO), Some(0));
        assert_eq!(c.latest_at(SimTime::from_millis(5_500)), Some(5));
        assert_eq!(c.latest_at(SimTime::from_secs(50)), Some(9), "clamped");
        let empty = BaselineConfig::paper_default(8, 0);
        assert_eq!(empty.latest_at(SimTime::from_secs(5)), None);
    }
}
