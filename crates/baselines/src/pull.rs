//! The pull-based mesh baseline.
//!
//! §IV: "Nodes in the pull/push-based methods exchange buffer maps with
//! their neighbors every second … in the pull-based method, every node
//! requests its missing chunk in a round robin manner until it receives the
//! chunk." Overhead = buffer-map exchanges + requests (+ miss replies).

use std::collections::HashMap;
use std::rc::Rc;

use dco_core::buffer::BufferMap;
use dco_core::chunk::ChunkSeq;
use dco_metrics::StreamObserver;
use dco_sim::prelude::*;
use dco_sim::slab::SlotTable;
use dco_sim::smallvec::SmallVec;

use crate::config::BaselineConfig;
use crate::mesh::MeshCore;

/// Pull-mesh wire messages.
#[derive(Clone, Debug)]
pub enum PullMsg {
    /// Periodic buffer-map advertisement. One snapshot is taken per
    /// advertisement round and shared (`Rc`) across the per-neighbor sends
    /// instead of deep-copied `k` times.
    Bufmap(Rc<BufferMap>),
    /// "Send me chunk `seq`."
    Request {
        /// The chunk wanted.
        seq: ChunkSeq,
    },
    /// The chunk payload (data class).
    Data {
        /// The chunk carried.
        seq: ChunkSeq,
    },
    /// "I no longer have that chunk" (stale map).
    Miss {
        /// The chunk that was asked for.
        seq: ChunkSeq,
    },
    /// "I have it but my upload queue is full — ask someone else."
    Busy {
        /// The chunk that was asked for.
        seq: ChunkSeq,
    },
}

/// Pull-mesh timers.
#[derive(Clone, Debug)]
pub enum PullTimer {
    /// Server: emit the next chunk.
    Generate,
    /// Advertise the buffer map to all neighbors.
    BufmapTick,
    /// Run the pull loop.
    PullTick,
    /// A request went unanswered.
    RequestTimeout {
        /// The chunk requested.
        seq: ChunkSeq,
        /// Who was asked.
        provider: NodeId,
    },
}

struct PullNode {
    buffer: BufferMap,
    /// Last advertised map per neighbor. Shared with the sender's other
    /// receivers; copy-on-write ([`Rc::make_mut`]) on the rare local
    /// corrections (miss replies, request timeouts).
    maps: HashMap<u32, Rc<BufferMap>>,
    /// Round-robin cursor over neighbors.
    cursor: usize,
    first_seq: ChunkSeq,
    /// The live chunk at this session's join instant (pulled first; older
    /// history is backfilled with leftover budget).
    session_seq: ChunkSeq,
}

/// The pull-based streaming mesh.
pub struct PullProtocol {
    cfg: BaselineConfig,
    mesh: MeshCore,
    nodes: Vec<Option<PullNode>>,
    /// Outstanding requests, pooled across nodes: node → (seq → provider).
    /// At most `max_inflight` entries per node, so one flat
    /// [`SlotTable`] replaces a per-node `HashMap`.
    pending: SlotTable<u32>,
    next_seq: ChunkSeq,
    /// Reception records for the metrics.
    pub obs: StreamObserver,
}

impl PullProtocol {
    /// Builds the protocol.
    pub fn new(cfg: BaselineConfig) -> Self {
        let n = cfg.n_nodes as usize;
        PullProtocol {
            mesh: MeshCore::new(n, cfg.neighbors),
            nodes: (0..n).map(|_| None).collect(),
            pending: SlotTable::new(n, cfg.max_inflight.max(1)),
            next_seq: ChunkSeq(0),
            obs: StreamObserver::new(n, cfg.n_chunks as usize),
            cfg,
        }
    }

    /// The mesh graph (inspection).
    pub fn mesh(&self) -> &MeshCore {
        &self.mesh
    }

    /// Chunks currently buffered by `node`.
    pub fn held_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()]
            .as_ref()
            .map(|s| s.buffer.held_count())
            .unwrap_or(0)
    }

    fn state_mut(&mut self, node: NodeId) -> Option<&mut PullNode> {
        self.nodes.get_mut(node.index()).and_then(Option::as_mut)
    }

    fn latest(&self, now: SimTime) -> Option<ChunkSeq> {
        self.cfg.latest_at(now).map(ChunkSeq)
    }

    fn send_bufmaps(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let Some(st) = self.nodes[node.index()].as_ref() else {
            return;
        };
        let snap = Rc::new(st.buffer.snapshot());
        for nb in self.mesh.neighbors(node) {
            ctx.send_control(node, nb, PullMsg::Bufmap(Rc::clone(&snap)), "pull.bufmap");
        }
    }

    fn pull_loop(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        let Some(latest) = self.latest(ctx.now()) else {
            return;
        };
        // Gather the neighbor list once per tick (stack-allocated for the
        // common degrees) so the round-robin can index it while the node
        // state and the pooled pending table are borrowed mutably.
        let neighbors: SmallVec<NodeId, 32> = self.mesh.neighbors(node).collect();
        if neighbors.is_empty() {
            return;
        }
        let timeout = self.cfg.request_timeout;
        let max_inflight = self.cfg.max_inflight;
        let pending = &mut self.pending;
        let Some(st) = self.nodes.get_mut(node.index()).and_then(Option::as_mut) else {
            return;
        };
        if latest < st.first_seq {
            return;
        }
        let budget = max_inflight.saturating_sub(pending.len(node.index()));
        if budget == 0 {
            return;
        }
        // This session's broadcast first (oldest-first for playback
        // continuity), then backfill pre-session history with whatever
        // budget remains — a rejoining viewer keeps up with the broadcast
        // while repairing its history.
        let session_start = st.session_seq.max(st.first_seq);
        let history_end = ChunkSeq(session_start.0.wrapping_sub(1));
        let buffer = &st.buffer;
        let maps = &st.maps;
        let cursor = &mut st.cursor;
        let mut issued = 0usize;
        let session = buffer.missing_in_iter(session_start, latest);
        let history = (session_start > st.first_seq)
            .then(|| buffer.missing_in_iter(st.first_seq, history_end))
            .into_iter()
            .flatten();
        for seq in session.chain(history) {
            if issued >= budget {
                break;
            }
            if pending.contains(node.index(), seq.0) {
                continue;
            }
            // Round-robin over neighbors until one advertises the chunk.
            let n = neighbors.len();
            let mut chosen = None;
            for off in 0..n {
                let cand = neighbors[(*cursor + off) % n];
                let has = maps.get(&cand.0).map(|m| m.has(seq)).unwrap_or(false);
                if has {
                    chosen = Some(cand);
                    *cursor = (*cursor + off + 1) % n;
                    break;
                }
            }
            if let Some(p) = chosen {
                pending.insert(node.index(), seq.0, p.0);
                issued += 1;
                ctx.send_control(node, p, PullMsg::Request { seq }, "pull.request");
                ctx.set_timer(
                    node,
                    timeout,
                    PullTimer::RequestTimeout { seq, provider: p },
                );
            }
        }
    }
}

impl Protocol for PullProtocol {
    type Msg = PullMsg;
    type Timer = PullTimer;

    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        // Pull nodes chase every missing chunk ("in a round robin manner
        // until it receives the chunk"), prioritizing the broadcast from
        // their join point and backfilling earlier history.
        let session_seq = if node == NodeId(0) {
            ChunkSeq(0)
        } else {
            self.latest(ctx.now()).unwrap_or(ChunkSeq(0))
        };
        self.nodes[node.index()] = Some(PullNode {
            buffer: BufferMap::new(self.cfg.n_chunks),
            maps: HashMap::new(),
            cursor: 0,
            first_seq: ChunkSeq(0),
            session_seq,
        });
        // The pooled pending table outlives the node state; a (re)joining
        // node starts with an empty segment.
        self.pending.clear(node.index());
        self.mesh.join(node, ctx.rng());
        if node == NodeId(0) {
            ctx.set_timer(node, SimDuration::ZERO, PullTimer::Generate);
        } else {
            ctx.set_timer(node, self.cfg.pull_tick, PullTimer::PullTick);
        }
        ctx.set_timer(node, self.cfg.bufmap_every, PullTimer::BufmapTick);
    }

    fn on_message(&mut self, node: NodeId, from: NodeId, msg: PullMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            PullMsg::Bufmap(map) => {
                if let Some(st) = self.state_mut(node) {
                    st.maps.insert(from.0, map);
                }
            }
            PullMsg::Request { seq } => {
                let has = self.nodes[node.index()]
                    .as_ref()
                    .map(|s| s.buffer.has(seq))
                    .unwrap_or(false);
                if !has {
                    ctx.send_control(node, from, PullMsg::Miss { seq }, "pull.miss");
                } else if ctx.upload_backlog(node) > self.cfg.busy_backlog {
                    // Answer immediately instead of letting the requester
                    // burn its timeout against a saturated queue.
                    ctx.send_control(node, from, PullMsg::Busy { seq }, "pull.miss");
                } else {
                    ctx.send_data(node, from, PullMsg::Data { seq }, self.cfg.chunk_size);
                }
            }
            PullMsg::Data { seq } => {
                let now = ctx.now();
                if let Some(st) = self.state_mut(node) {
                    if st.buffer.insert(seq) {
                        self.obs.record_received(seq.0, node, now);
                    }
                }
                self.pending.remove(node.index(), seq.0);
            }
            PullMsg::Miss { seq } => {
                if let Some(st) = self.state_mut(node) {
                    // The advertised map was stale; drop the bit so the
                    // round-robin moves on (copy-on-write: the sender's
                    // other receivers keep the shared original).
                    if let Some(m) = st.maps.get_mut(&from.0) {
                        Rc::make_mut(m).remove(seq);
                    }
                }
                self.pending.remove(node.index(), seq.0);
            }
            PullMsg::Busy { seq } => {
                // Keep the advertisement (the holder does have it); the
                // round-robin simply tries another neighbor next tick.
                self.pending.remove(node.index(), seq.0);
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: PullTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            PullTimer::Generate => {
                let seq = self.next_seq;
                if seq.0 >= self.cfg.n_chunks {
                    return;
                }
                self.next_seq = seq.next();
                let now = ctx.now();
                self.obs.record_generated(seq.0, now);
                for i in 1..self.cfg.n_nodes {
                    if ctx.is_alive(NodeId(i)) {
                        self.obs.mark_expected(seq.0, NodeId(i));
                    }
                }
                if let Some(st) = self.state_mut(node) {
                    st.buffer.insert(seq);
                }
                if self.next_seq.0 < self.cfg.n_chunks {
                    ctx.set_timer(node, self.cfg.chunk_interval, PullTimer::Generate);
                }
            }
            PullTimer::BufmapTick => {
                self.send_bufmaps(node, ctx);
                ctx.set_timer(node, self.cfg.bufmap_every, PullTimer::BufmapTick);
            }
            PullTimer::PullTick => {
                self.pull_loop(node, ctx);
                ctx.set_timer(node, self.cfg.pull_tick, PullTimer::PullTick);
            }
            PullTimer::RequestTimeout { seq, provider } => {
                if self.pending.get(node.index(), seq.0) == Some(provider.0) {
                    self.pending.remove(node.index(), seq.0);
                    // Assume the neighbor is gone or useless for this
                    // chunk; forget its advertisement.
                    if let Some(st) = self.state_mut(node) {
                        if let Some(m) = st.maps.get_mut(&provider.0) {
                            Rc::make_mut(m).remove(seq);
                        }
                    }
                }
            }
        }
    }

    fn on_leave(&mut self, node: NodeId, _graceful: bool, ctx: &mut Ctx<'_, Self>) {
        let repairs = self.mesh.leave(node, ctx.rng());
        self.nodes[node.index()] = None;
        self.pending.clear(node.index());
        // Drop the dead neighbor's map everywhere and greet replacements
        // with a fresh map (tracker-assisted mesh repair).
        for (bereaved, replacement) in repairs {
            if let Some(st) = self.state_mut(bereaved) {
                st.maps.remove(&node.0);
                let snap = Rc::new(st.buffer.snapshot());
                ctx.send_control(bereaved, replacement, PullMsg::Bufmap(snap), "pull.bufmap");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: u32, chunks: u32, k: usize, seed: u64) -> Simulator<PullProtocol> {
        let mut cfg = BaselineConfig::paper_default(n, chunks);
        cfg.neighbors = k;
        let mut sim = Simulator::new(PullProtocol::new(cfg), NetConfig::default(), seed);
        for i in 0..n {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn pull_mesh_delivers_all_chunks() {
        let mut sim = build(16, 10, 6, 3);
        sim.run_until(SimTime::from_secs(120));
        let p = sim.protocol();
        assert_eq!(p.obs.expected_pairs(), 150);
        assert_eq!(
            p.obs.received_pairs(),
            150,
            "pull eventually fetches everything"
        );
        assert!(sim.counters().tagged("pull.bufmap") > 0);
        assert!(sim.counters().tagged("pull.request") > 0);
    }

    #[test]
    fn pull_completes_even_on_a_sparse_mesh() {
        // At small n the paper's neighbor-count/delay trend is noise; the
        // robust property is completeness even when each joiner only picks
        // two neighbors. (The fig-5 harness checks the trend at n = 512.)
        let mut sim = build(24, 10, 2, 5);
        sim.run_until(SimTime::from_secs(120));
        let p = sim.protocol();
        assert_eq!(p.obs.received_pairs(), p.obs.expected_pairs());
        let d = p.obs.mean_mesh_delay(SimTime::from_secs(120));
        assert!(d > 0.0 && d < 60.0, "implausible delay {d:.2}s");
    }

    #[test]
    fn pull_survives_churn() {
        let mut sim = build(20, 20, 6, 7);
        for (i, t) in [(3u32, 5u64), (8, 9), (12, 13)] {
            sim.schedule_leave(NodeId(i), SimTime::from_secs(t), false);
            sim.schedule_join(NodeId(i), SimTime::from_secs(t + 8));
        }
        sim.run_until(SimTime::from_secs(150));
        let pct = sim
            .protocol()
            .obs
            .received_percentage(SimTime::from_secs(150));
        assert!(pct > 85.0, "pull under churn got only {pct:.1}%");
    }

    #[test]
    fn overhead_grows_with_neighbor_count() {
        let mut few = build(16, 10, 4, 11);
        few.run_until(SimTime::from_secs(60));
        let mut many = build(16, 10, 12, 11);
        many.run_until(SimTime::from_secs(60));
        assert!(
            many.counters().tagged("pull.bufmap") > few.counters().tagged("pull.bufmap"),
            "more neighbors ⇒ more buffer-map traffic"
        );
    }
}
