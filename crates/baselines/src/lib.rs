//! # dco-baselines — the paper's comparison protocols
//!
//! §IV compares DCO against three baselines, all reimplemented here over
//! the same simulator, bandwidth model and metrics:
//!
//! * [`pull`] — mesh with 1-second buffer-map gossip; missing chunks are
//!   requested from advertising neighbors round-robin.
//! * [`push`] — mesh with the same gossip; holders push chunks their
//!   neighbors lack whenever upload bandwidth is free (duplicates and all).
//! * [`tree`] — rigid d-ary tree pushing top-down from the server, with
//!   zero control overhead and zero churn repair; `d = neighbors/8` per the
//!   paper (or `d = neighbors` for the "tree*" ablation).
//! * [`mesh`] — the shared random-graph substrate with tracker-assisted
//!   neighbor repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod mesh;
pub mod pull;
pub mod push;
pub mod tree;

pub use config::BaselineConfig;
pub use mesh::MeshCore;
pub use pull::PullProtocol;
pub use push::PushProtocol;
pub use tree::TreeProtocol;
