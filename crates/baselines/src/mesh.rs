//! Shared mesh substrate for the pull and push baselines.
//!
//! §IV: "In the pull-based and push-based mesh overlays, every node is
//! randomly connected with its neighbors." [`MeshCore`] owns that random
//! graph: it tracks liveness, picks each joiner's random neighbor set
//! (bidirectional links), and — because meshes are "naturally resilient to
//! churn" — replaces a dead neighbor with a fresh random pick, playing the
//! role of the membership tracker real deployments run.

use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;

/// The random mesh graph plus liveness.
#[derive(Clone, Debug)]
pub struct MeshCore {
    k: usize,
    alive: Vec<bool>,
    links: Vec<Vec<NodeId>>,
}

impl MeshCore {
    /// An empty mesh over `n` node slots targeting `k` neighbors per node.
    pub fn new(n: usize, k: usize) -> Self {
        MeshCore {
            k,
            alive: vec![false; n],
            links: vec![Vec::new(); n],
        }
    }

    /// Target neighbor count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// True if `node` is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Currently alive nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.alive.len() as u32)
            .map(NodeId)
            .filter(|&n| self.alive[n.index()])
            .collect()
    }

    /// The neighbor list of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.links[node.index()]
    }

    fn link(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        if !self.links[a.index()].contains(&b) {
            self.links[a.index()].push(b);
        }
        if !self.links[b.index()].contains(&a) {
            self.links[b.index()].push(a);
        }
    }

    fn unlink_everywhere(&mut self, node: NodeId) {
        for l in &mut self.links {
            l.retain(|&n| n != node);
        }
        self.links[node.index()].clear();
    }

    /// Brings `node` up and wires it to up to `k` random alive peers.
    /// Returns its new neighbor list.
    pub fn join(&mut self, node: NodeId, rng: &mut SimRng) -> Vec<NodeId> {
        self.alive[node.index()] = true;
        let mut candidates: Vec<NodeId> = self
            .alive_nodes()
            .into_iter()
            .filter(|&n| n != node && !self.links[node.index()].contains(&n))
            .collect();
        rng.shuffle(&mut candidates);
        let need = self.k.saturating_sub(self.links[node.index()].len());
        for &peer in candidates.iter().take(need) {
            self.link(node, peer);
        }
        self.links[node.index()].clone()
    }

    /// Takes `node` down, severs its links, and gives each bereaved
    /// neighbor a random replacement. Returns `(bereaved, replacement)`
    /// pairs for the protocol to act on (e.g. send the new neighbor a
    /// buffer map).
    pub fn leave(&mut self, node: NodeId, rng: &mut SimRng) -> Vec<(NodeId, NodeId)> {
        if !self.alive[node.index()] {
            return Vec::new();
        }
        self.alive[node.index()] = false;
        let bereaved = self.links[node.index()].clone();
        self.unlink_everywhere(node);
        let mut repairs = Vec::new();
        for b in bereaved {
            if !self.alive[b.index()] {
                continue;
            }
            let mut candidates: Vec<NodeId> = self
                .alive_nodes()
                .into_iter()
                .filter(|&n| n != b && !self.links[b.index()].contains(&n))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = candidates.remove(rng.gen_range(0..candidates.len()));
            self.link(b, pick);
            repairs.push((b, pick));
        }
        repairs
    }

    /// Mean neighbor count over alive nodes (diagnostic).
    pub fn mean_degree(&self) -> f64 {
        let alive = self.alive_nodes();
        if alive.is_empty() {
            return 0.0;
        }
        alive
            .iter()
            .map(|&n| self.links[n.index()].len() as f64)
            .sum::<f64>()
            / alive.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(9)
    }

    #[test]
    fn joiners_get_k_neighbors_when_available() {
        let mut m = MeshCore::new(32, 4);
        let mut r = rng();
        for i in 0..32u32 {
            m.join(NodeId(i), &mut r);
        }
        // Everyone has at least k neighbors (links are bidirectional so
        // some have more).
        for i in 0..32u32 {
            assert!(
                m.neighbors(NodeId(i)).len() >= 4,
                "N{i} has {}",
                m.neighbors(NodeId(i)).len()
            );
        }
        assert!(m.mean_degree() >= 4.0);
    }

    #[test]
    fn links_are_bidirectional_and_self_free() {
        let mut m = MeshCore::new(8, 3);
        let mut r = rng();
        for i in 0..8u32 {
            m.join(NodeId(i), &mut r);
        }
        for i in 0..8u32 {
            for &n in m.neighbors(NodeId(i)) {
                assert_ne!(n, NodeId(i), "no self-links");
                assert!(m.neighbors(n).contains(&NodeId(i)), "symmetry");
            }
        }
    }

    #[test]
    fn small_population_caps_neighbors() {
        let mut m = MeshCore::new(4, 10);
        let mut r = rng();
        for i in 0..4u32 {
            m.join(NodeId(i), &mut r);
        }
        for i in 0..4u32 {
            assert_eq!(m.neighbors(NodeId(i)).len(), 3, "complete graph of 4");
        }
    }

    #[test]
    fn leave_severs_and_repairs() {
        let mut m = MeshCore::new(16, 4);
        let mut r = rng();
        for i in 0..16u32 {
            m.join(NodeId(i), &mut r);
        }
        let victim = NodeId(3);
        let bereaved_before: Vec<NodeId> = m.neighbors(victim).to_vec();
        let repairs = m.leave(victim, &mut r);
        assert!(!m.is_alive(victim));
        for i in 0..16u32 {
            assert!(
                !m.neighbors(NodeId(i)).contains(&victim),
                "N{i} still linked"
            );
        }
        // Every bereaved neighbor got a repair offer.
        for b in bereaved_before {
            assert!(repairs.iter().any(|&(x, _)| x == b), "{b} not repaired");
        }
        // Leaving twice is a no-op.
        assert!(m.leave(victim, &mut r).is_empty());
    }

    #[test]
    fn rejoin_after_leave() {
        let mut m = MeshCore::new(8, 3);
        let mut r = rng();
        for i in 0..8u32 {
            m.join(NodeId(i), &mut r);
        }
        m.leave(NodeId(2), &mut r);
        let neighbors = m.join(NodeId(2), &mut r);
        assert!(m.is_alive(NodeId(2)));
        assert!(neighbors.len() >= 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut m = MeshCore::new(20, 5);
            let mut r = SimRng::seed_from_u64(seed);
            for i in 0..20u32 {
                m.join(NodeId(i), &mut r);
            }
            (0..20u32)
                .map(|i| m.neighbors(NodeId(i)).to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2));
    }
}
