//! Shared mesh substrate for the pull and push baselines.
//!
//! §IV: "In the pull-based and push-based mesh overlays, every node is
//! randomly connected with its neighbors." [`MeshCore`] owns that random
//! graph: it tracks liveness, picks each joiner's random neighbor set
//! (bidirectional links), and — because meshes are "naturally resilient to
//! churn" — replaces a dead neighbor with a fresh random pick, playing the
//! role of the membership tracker real deployments run.
//!
//! The adjacency lists live in one pooled [`ListSlab`] (linked chains
//! through a shared arena) instead of a `Vec<Vec<NodeId>>`: at N = 100k
//! that is two flat allocations instead of one hundred thousand small
//! ones, with identical insertion-order semantics.

use dco_sim::node::NodeId;
use dco_sim::rng::SimRng;
use dco_sim::slab::ListSlab;

/// The random mesh graph plus liveness.
#[derive(Clone, Debug)]
pub struct MeshCore {
    k: usize,
    alive: Vec<bool>,
    links: ListSlab,
}

impl MeshCore {
    /// An empty mesh over `n` node slots targeting `k` neighbors per node.
    pub fn new(n: usize, k: usize) -> Self {
        MeshCore {
            k,
            alive: vec![false; n],
            // Bidirectional links ⇒ ~n·k pool entries once everyone joined.
            links: ListSlab::new(n, n.saturating_mul(k)),
        }
    }

    /// Target neighbor count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// True if `node` is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Currently alive nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.alive.len() as u32)
            .map(NodeId)
            .filter(|&n| self.alive[n.index()])
            .collect()
    }

    /// The neighbors of `node`, in link-insertion order.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.links.iter(node.index()).map(NodeId)
    }

    /// `node`'s current neighbor count.
    pub fn degree(&self, node: NodeId) -> usize {
        self.links.len(node.index())
    }

    /// The neighbor list of `node` as an owned vector (membership events
    /// and tests; the per-tick hot paths iterate instead).
    pub fn neighbors_vec(&self, node: NodeId) -> Vec<NodeId> {
        self.neighbors(node).collect()
    }

    fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains(a.index(), b.0)
    }

    fn link(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        if !self.has_link(a, b) {
            self.links.push_back(a.index(), b.0);
        }
        if !self.has_link(b, a) {
            self.links.push_back(b.index(), a.0);
        }
    }

    fn unlink_everywhere(&mut self, node: NodeId) {
        // Sever the reverse edges through the node's own list (links are
        // bidirectional, so only its neighbors can hold an edge to it),
        // then drop the list itself.
        let neighbors = self.neighbors_vec(node);
        for nb in neighbors {
            self.links.remove(nb.index(), node.0);
        }
        self.links.clear(node.index());
    }

    /// Brings `node` up and wires it to up to `k` random alive peers.
    /// Returns its new neighbor list.
    pub fn join(&mut self, node: NodeId, rng: &mut SimRng) -> Vec<NodeId> {
        self.alive[node.index()] = true;
        let mut candidates: Vec<NodeId> = self
            .alive_nodes()
            .into_iter()
            .filter(|&n| n != node && !self.has_link(node, n))
            .collect();
        rng.shuffle(&mut candidates);
        let need = self.k.saturating_sub(self.degree(node));
        for &peer in candidates.iter().take(need) {
            self.link(node, peer);
        }
        self.neighbors_vec(node)
    }

    /// Takes `node` down, severs its links, and gives each bereaved
    /// neighbor a random replacement. Returns `(bereaved, replacement)`
    /// pairs for the protocol to act on (e.g. send the new neighbor a
    /// buffer map).
    pub fn leave(&mut self, node: NodeId, rng: &mut SimRng) -> Vec<(NodeId, NodeId)> {
        if !self.alive[node.index()] {
            return Vec::new();
        }
        self.alive[node.index()] = false;
        let bereaved = self.neighbors_vec(node);
        self.unlink_everywhere(node);
        let mut repairs = Vec::new();
        for b in bereaved {
            if !self.alive[b.index()] {
                continue;
            }
            let mut candidates: Vec<NodeId> = self
                .alive_nodes()
                .into_iter()
                .filter(|&n| n != b && !self.has_link(b, n))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = candidates.remove(rng.gen_range(0..candidates.len()));
            self.link(b, pick);
            repairs.push((b, pick));
        }
        repairs
    }

    /// Mean neighbor count over alive nodes (diagnostic).
    pub fn mean_degree(&self) -> f64 {
        let alive = self.alive_nodes();
        if alive.is_empty() {
            return 0.0;
        }
        alive.iter().map(|&n| self.degree(n) as f64).sum::<f64>() / alive.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(9)
    }

    #[test]
    fn joiners_get_k_neighbors_when_available() {
        let mut m = MeshCore::new(32, 4);
        let mut r = rng();
        for i in 0..32u32 {
            m.join(NodeId(i), &mut r);
        }
        // Everyone has at least k neighbors (links are bidirectional so
        // some have more).
        for i in 0..32u32 {
            assert!(m.degree(NodeId(i)) >= 4, "N{i} has {}", m.degree(NodeId(i)));
        }
        assert!(m.mean_degree() >= 4.0);
    }

    #[test]
    fn links_are_bidirectional_and_self_free() {
        let mut m = MeshCore::new(8, 3);
        let mut r = rng();
        for i in 0..8u32 {
            m.join(NodeId(i), &mut r);
        }
        for i in 0..8u32 {
            for n in m.neighbors_vec(NodeId(i)) {
                assert_ne!(n, NodeId(i), "no self-links");
                assert!(m.neighbors(n).any(|x| x == NodeId(i)), "symmetry");
            }
        }
    }

    #[test]
    fn small_population_caps_neighbors() {
        let mut m = MeshCore::new(4, 10);
        let mut r = rng();
        for i in 0..4u32 {
            m.join(NodeId(i), &mut r);
        }
        for i in 0..4u32 {
            assert_eq!(m.degree(NodeId(i)), 3, "complete graph of 4");
        }
    }

    #[test]
    fn leave_severs_and_repairs() {
        let mut m = MeshCore::new(16, 4);
        let mut r = rng();
        for i in 0..16u32 {
            m.join(NodeId(i), &mut r);
        }
        let victim = NodeId(3);
        let bereaved_before: Vec<NodeId> = m.neighbors_vec(victim);
        let repairs = m.leave(victim, &mut r);
        assert!(!m.is_alive(victim));
        for i in 0..16u32 {
            assert!(
                !m.neighbors(NodeId(i)).any(|x| x == victim),
                "N{i} still linked"
            );
        }
        // Every bereaved neighbor got a repair offer.
        for b in bereaved_before {
            assert!(repairs.iter().any(|&(x, _)| x == b), "{b} not repaired");
        }
        // Leaving twice is a no-op.
        assert!(m.leave(victim, &mut r).is_empty());
    }

    #[test]
    fn rejoin_after_leave() {
        let mut m = MeshCore::new(8, 3);
        let mut r = rng();
        for i in 0..8u32 {
            m.join(NodeId(i), &mut r);
        }
        m.leave(NodeId(2), &mut r);
        let neighbors = m.join(NodeId(2), &mut r);
        assert!(m.is_alive(NodeId(2)));
        assert!(neighbors.len() >= 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let mut m = MeshCore::new(20, 5);
            let mut r = SimRng::seed_from_u64(seed);
            for i in 0..20u32 {
                m.join(NodeId(i), &mut r);
            }
            (0..20u32)
                .map(|i| m.neighbors_vec(NodeId(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2));
    }
}
