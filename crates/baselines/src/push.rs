//! The push-based mesh baseline.
//!
//! §IV: "in the push-based method, every node sends missing chunks to their
//! neighbors regardless whether they have received chunks from others" —
//! i.e. each node pushes, from its own buffer, the chunks a neighbor's last
//! buffer map says it lacks, whenever upload bandwidth is available. No
//! receiver coordination ⇒ duplicate deliveries, which is push's
//! characteristic overhead in the paper.

use std::collections::HashMap;
use std::rc::Rc;

use dco_core::buffer::BufferMap;
use dco_core::chunk::ChunkSeq;
use dco_metrics::StreamObserver;
use dco_sim::prelude::*;
use dco_sim::smallvec::SmallVec;

use crate::config::BaselineConfig;
use crate::mesh::MeshCore;

/// Push-mesh wire messages.
#[derive(Clone, Debug)]
pub enum PushMsg {
    /// Periodic buffer-map advertisement. One snapshot per round, shared
    /// (`Rc`) across the per-neighbor sends instead of deep-copied.
    Bufmap(Rc<BufferMap>),
    /// The chunk payload (data class).
    Data {
        /// The chunk carried.
        seq: ChunkSeq,
    },
}

/// Push-mesh timers.
#[derive(Clone, Debug)]
pub enum PushTimer {
    /// Server: emit the next chunk.
    Generate,
    /// Advertise the buffer map and push what neighbors lack.
    BufmapTick,
}

struct PushNode {
    buffer: BufferMap,
    /// Our working view of each neighbor's holdings: their last advertised
    /// map, optimistically updated as we push (so we do not re-push the
    /// same chunk to the same neighbor every tick).
    views: HashMap<u32, BufferMap>,
    /// Rotating cursor so successive rounds favor different neighbors.
    cursor: usize,
}

/// The push-based streaming mesh.
pub struct PushProtocol {
    cfg: BaselineConfig,
    mesh: MeshCore,
    nodes: Vec<Option<PushNode>>,
    next_seq: ChunkSeq,
    /// Reception records for the metrics.
    pub obs: StreamObserver,
    /// Duplicate data deliveries observed (push's waste).
    pub duplicates: u64,
    /// Diagnostic: sends from the fresh-relay path.
    pub relay_sends: u64,
    /// Diagnostic: sends from the catch-up path.
    pub catchup_sends: u64,
}

impl PushProtocol {
    /// Builds the protocol.
    pub fn new(cfg: BaselineConfig) -> Self {
        let n = cfg.n_nodes as usize;
        PushProtocol {
            mesh: MeshCore::new(n, cfg.neighbors),
            nodes: (0..n).map(|_| None).collect(),
            next_seq: ChunkSeq(0),
            obs: StreamObserver::new(n, cfg.n_chunks as usize),
            duplicates: 0,
            relay_sends: 0,
            catchup_sends: 0,
            cfg,
        }
    }

    /// The mesh graph (inspection).
    pub fn mesh(&self) -> &MeshCore {
        &self.mesh
    }

    /// Chunks currently buffered by `node`.
    pub fn held_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()]
            .as_ref()
            .map(|s| s.buffer.held_count())
            .unwrap_or(0)
    }

    fn state_mut(&mut self, node: NodeId) -> Option<&mut PushNode> {
        self.nodes.get_mut(node.index()).and_then(Option::as_mut)
    }

    /// Pushes to `neighbor` up to `batch` chunks it lacks per our view,
    /// newest first ("the primary goal of push is to distribute fresh
    /// chunks"), while upload bandwidth remains. Several of the neighbor's
    /// other providers run the same catch-up concurrently — the resulting
    /// duplicate deliveries are push's characteristic waste (§I (iii)).
    fn push_to(&mut self, node: NodeId, neighbor: NodeId, batch: usize, ctx: &mut Ctx<'_, Self>) {
        let busy_cap = self.cfg.busy_backlog;
        let chunk_size = self.cfg.chunk_size;
        // Only repair holes old enough to have fallen off the fresh-relay
        // path (≥ 4 chunk intervals). Pushing *hot* chunks from here would
        // collide with every other provider doing the same in the same
        // buffer-map round.
        let cutoff_secs = ctx.now().as_secs().saturating_sub(4);
        let age_floor = match self.cfg.latest_at(SimTime::from_secs(cutoff_secs)) {
            Some(f) => f,
            None => return, // nothing is old enough to repair yet
        };
        let gap = {
            let Some(st) = self.nodes[node.index()].as_ref() else {
                return;
            };
            let Some(view) = st.views.get(&neighbor.0) else {
                return;
            };
            st.buffer
                .held_that_other_misses(view, ChunkSeq(0), ChunkSeq(age_floor))
        };
        if gap.is_empty() {
            return;
        }
        // Degree-scaled suppression: roughly `deg` of the receiver's
        // providers run this same catch-up every buffer-map round, so each
        // provider only volunteers with probability ~4/deg — the receiver
        // still sees a few repair offers per round without a pile-up.
        let deg = self.mesh.degree(node).max(1);
        let idle = ctx.upload_backlog(node).is_zero();
        if !idle && deg > 4 && !ctx.rng().gen_bool((4.0 / deg as f64).clamp(0.0, 1.0)) {
            return;
        }
        // Random picks from the gap: uniform choice spreads concurrent
        // providers across the gap instead of colliding on one hole.
        let mut picks = Vec::with_capacity(batch.min(gap.len()));
        for _ in 0..batch.min(gap.len()) {
            let c = gap[ctx.rng().gen_range(0..gap.len())];
            if !picks.contains(&c) {
                picks.push(c);
            }
        }
        let mut sent = 0u64;
        {
            let Some(st) = self.state_mut(node) else {
                return;
            };
            let view = st.views.entry(neighbor.0).or_default();
            for seq in picks {
                if ctx.upload_backlog(node) > busy_cap {
                    break; // no available upload bandwidth: stop pushing
                }
                view.insert(seq);
                sent += 1;
                ctx.send_data(node, neighbor, PushMsg::Data { seq }, chunk_size);
            }
        }
        self.catchup_sends += sent;
    }

    /// Relays one freshly received chunk to a bounded number of neighbors
    /// that (per our view) lack it — the epidemic fast path. The fanout cap
    /// keeps the exponential spread while limiting the duplicate traffic
    /// unbounded flooding produces (the receivers relay onward themselves).
    fn relay_fresh(&mut self, node: NodeId, seq: ChunkSeq, ctx: &mut Ctx<'_, Self>) {
        const RELAY_FANOUT: usize = 3;
        let busy_cap = self.cfg.busy_backlog;
        let chunk_size = self.cfg.chunk_size;
        // Gather the neighbor list once (stack-allocated for the common
        // degrees) so the rotating cursor can index it while the node state
        // is mutated.
        let neighbors: SmallVec<NodeId, 32> = self.mesh.neighbors(node).collect();
        if neighbors.is_empty() {
            return;
        }
        let mut sent = 0u64;
        {
            let Some(st) = self.nodes.get_mut(node.index()).and_then(Option::as_mut) else {
                return;
            };
            let start = st.cursor % neighbors.len();
            st.cursor = st.cursor.wrapping_add(1);
            for off in 0..neighbors.len() {
                if sent >= RELAY_FANOUT as u64 || ctx.upload_backlog(node) > busy_cap {
                    break;
                }
                let nb = neighbors[(start + off) % neighbors.len()];
                let view = st.views.entry(nb.0).or_default();
                if !view.has(seq) {
                    view.insert(seq);
                    ctx.send_data(node, nb, PushMsg::Data { seq }, chunk_size);
                    sent += 1;
                }
            }
        }
        self.relay_sends += sent;
    }
}

impl Protocol for PushProtocol {
    type Msg = PushMsg;
    type Timer = PushTimer;

    fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
        self.nodes[node.index()] = Some(PushNode {
            buffer: BufferMap::new(self.cfg.n_chunks),
            views: HashMap::new(),
            cursor: node.index(),
        });
        self.mesh.join(node, ctx.rng());
        if node == NodeId(0) {
            ctx.set_timer(node, SimDuration::ZERO, PushTimer::Generate);
        }
        ctx.set_timer(node, self.cfg.bufmap_every, PushTimer::BufmapTick);
    }

    fn on_message(&mut self, node: NodeId, from: NodeId, msg: PushMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            PushMsg::Bufmap(map) => {
                // Merge the advertisement into our optimistic view (union):
                // chunks we already pushed are still in the neighbor's
                // download queue and must not be pushed again just because
                // they are not in its map yet.
                if let Some(st) = self.state_mut(node) {
                    st.views.entry(from.0).or_default().union_with(&map);
                }
                self.push_to(node, from, 2, ctx);
            }
            PushMsg::Data { seq } => {
                let now = ctx.now();
                let fresh = match self.state_mut(node) {
                    Some(st) => {
                        // Whoever sent this obviously holds it.
                        st.views.entry(from.0).or_default().insert(seq);
                        st.buffer.insert(seq)
                    }
                    None => return,
                };
                if !fresh {
                    self.duplicates += 1;
                    return;
                }
                self.obs.record_received(seq.0, node, now);
                // Relay the fresh chunk onward immediately.
                self.relay_fresh(node, seq, ctx);
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: PushTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            PushTimer::Generate => {
                let seq = self.next_seq;
                if seq.0 >= self.cfg.n_chunks {
                    return;
                }
                self.next_seq = seq.next();
                let now = ctx.now();
                self.obs.record_generated(seq.0, now);
                for i in 1..self.cfg.n_nodes {
                    if ctx.is_alive(NodeId(i)) {
                        self.obs.mark_expected(seq.0, NodeId(i));
                    }
                }
                if let Some(st) = self.state_mut(node) {
                    st.buffer.insert(seq);
                }
                // The freshly generated chunk enters the epidemic exactly
                // like a freshly received one.
                self.relay_fresh(node, seq, ctx);
                if self.next_seq.0 < self.cfg.n_chunks {
                    ctx.set_timer(node, self.cfg.chunk_interval, PushTimer::Generate);
                }
            }
            PushTimer::BufmapTick => {
                let snap = self.nodes[node.index()]
                    .as_ref()
                    .map(|s| Rc::new(s.buffer.snapshot()));
                if let Some(snap) = snap {
                    for nb in self.mesh.neighbors(node) {
                        ctx.send_control(
                            node,
                            nb,
                            PushMsg::Bufmap(Rc::clone(&snap)),
                            "push.bufmap",
                        );
                    }
                }
                ctx.set_timer(node, self.cfg.bufmap_every, PushTimer::BufmapTick);
            }
        }
    }

    fn on_leave(&mut self, node: NodeId, _graceful: bool, ctx: &mut Ctx<'_, Self>) {
        let repairs = self.mesh.leave(node, ctx.rng());
        self.nodes[node.index()] = None;
        for (bereaved, replacement) in repairs {
            if let Some(st) = self.state_mut(bereaved) {
                st.views.remove(&node.0);
                let snap = Rc::new(st.buffer.snapshot());
                ctx.send_control(bereaved, replacement, PushMsg::Bufmap(snap), "push.bufmap");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: u32, chunks: u32, k: usize, seed: u64) -> Simulator<PushProtocol> {
        build_with(n, chunks, k, seed, NetConfig::default())
    }

    fn build_with(
        n: u32,
        chunks: u32,
        k: usize,
        seed: u64,
        net: NetConfig,
    ) -> Simulator<PushProtocol> {
        let mut cfg = BaselineConfig::paper_default(n, chunks);
        cfg.neighbors = k;
        let mut sim = Simulator::new(PushProtocol::new(cfg), net, seed);
        for i in 0..n {
            let caps = if i == 0 {
                NodeCaps::server_default()
            } else {
                NodeCaps::peer_default()
            };
            let id = sim.add_node(caps);
            sim.schedule_join(id, SimTime::ZERO);
        }
        sim
    }

    #[test]
    fn push_mesh_floods_all_chunks() {
        let mut sim = build(16, 10, 6, 4);
        sim.run_until(SimTime::from_secs(120));
        let p = sim.protocol();
        assert_eq!(p.obs.expected_pairs(), 150);
        assert_eq!(p.obs.received_pairs(), 150);
        assert!(sim.counters().tagged("push.bufmap") > 0);
    }

    #[test]
    fn push_spreads_fast_with_many_neighbors() {
        // Under the paper's sender-side-only bandwidth model (§IV), push
        // with many neighbors floods the network within a few epidemic
        // generations.
        let mut sim = build_with(24, 10, 16, 8, NetConfig::paper_model());
        sim.run_until(SimTime::from_secs(60));
        let p = sim.protocol();
        let f = p.obs.mean_fill_ratio_at_offset(SimDuration::from_secs(5));
        assert!(f > 0.45, "fill at +5 s only {f:.2}");
        assert_eq!(p.obs.received_pairs(), p.obs.expected_pairs());
    }

    #[test]
    fn push_produces_duplicates() {
        let mut sim = build(16, 10, 8, 1);
        sim.run_until(SimTime::from_secs(60));
        assert!(
            sim.protocol().duplicates > 0,
            "uncoordinated pushing must occasionally duplicate"
        );
    }

    #[test]
    fn push_survives_churn() {
        let mut sim = build(20, 20, 6, 2);
        for (i, t) in [(4u32, 5u64), (9, 9), (14, 13)] {
            sim.schedule_leave(NodeId(i), SimTime::from_secs(t), false);
            sim.schedule_join(NodeId(i), SimTime::from_secs(t + 8));
        }
        sim.run_until(SimTime::from_secs(150));
        let pct = sim
            .protocol()
            .obs
            .received_percentage(SimTime::from_secs(150));
        assert!(pct > 75.0, "push under churn got only {pct:.1}%");
    }
}
