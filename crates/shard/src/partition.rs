//! Contiguous ring-arc partitioning.
//!
//! Shards own *arcs of the DHT ring*, not arbitrary node subsets: DCO's
//! traffic is dominated by coordinator↔successor/finger chatter between
//! ring-adjacent peers, so cutting the ring into `K` contiguous arcs keeps
//! most messages shard-local and only arc-boundary (plus finger/lookup)
//! traffic crosses processes.
//!
//! The caller supplies the ring position of each node (`dco-dht`'s
//! `hash_node`); this crate stays protocol-agnostic.

/// Splits nodes `0..n` into `k` contiguous ring arcs of near-equal
/// population, returning `map[node] = shard`.
///
/// Nodes are sorted by `(ring_pos(node), node)` — the tiebreak makes the
/// arcs well-defined even under hash collisions — and the sorted order is
/// cut into `k` runs whose sizes differ by at most one.
pub fn contiguous_arcs(n: usize, k: u8, ring_pos: impl Fn(u32) -> u64) -> Vec<u8> {
    assert!(k >= 1, "need at least one shard");
    assert!(n >= k as usize, "fewer nodes than shards");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&id| (ring_pos(id), id));
    let mut map = vec![0u8; n];
    let (base, extra) = (n / k as usize, n % k as usize);
    let mut cursor = 0usize;
    for shard in 0..k {
        // The first `extra` arcs absorb the remainder, one node each.
        let len = base + usize::from((shard as usize) < extra);
        for &id in &order[cursor..cursor + len] {
            map[id as usize] = shard;
        }
        cursor += len;
    }
    debug_assert_eq!(cursor, n);
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_are_contiguous_in_ring_order() {
        let pos = |id: u32| u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let n = 103;
        let map = contiguous_arcs(n, 4, pos);
        // Walking the ring in position order, the shard index must be
        // non-decreasing: each shard owns exactly one arc.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&id| (pos(id), id));
        let walk: Vec<u8> = order.iter().map(|&id| map[id as usize]).collect();
        assert!(walk.windows(2).all(|w| w[0] <= w[1]), "{walk:?}");
        // Near-equal population.
        for shard in 0..4u8 {
            let pop = map.iter().filter(|&&s| s == shard).count();
            assert!((25..=26).contains(&pop), "shard {shard} owns {pop}");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        assert_eq!(contiguous_arcs(5, 1, u64::from), vec![0; 5]);
    }

    #[test]
    fn collisions_are_broken_by_node_id() {
        // All nodes hash to the same point; the arcs must still be a
        // deterministic, balanced split.
        let map = contiguous_arcs(6, 3, |_| 42);
        assert_eq!(map, vec![0, 0, 1, 1, 2, 2]);
    }
}
