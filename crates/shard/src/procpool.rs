//! Worker process lifecycle: spawn, harvest, reap on failure.
//!
//! Workers are re-execs of the orchestrator binary (`current_exe`) with a
//! hidden worker flag in `argv`; they speak the epoch protocol over
//! stdin/stdout while stderr is captured to a per-worker temp file. On any
//! failure the whole pool is killed, every child is waited on (no zombies),
//! and the failing workers' stderr is folded into the returned error so the
//! user sees the actual panic message instead of a bare broken pipe.

use std::fs::{self, File};
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use crate::link::PipeLink;

/// One spawned worker: the child process plus its framed stdio link.
pub struct WorkerProc {
    /// OS child handle.
    pub child: Child,
    /// Framed stdio transport (child stdout → recv, child stdin → send).
    pub link: PipeLink<ChildStdout, ChildStdin>,
    /// Shard index, for error reporting.
    pub shard: usize,
    stderr_path: PathBuf,
}

/// Temp-file path for one worker's captured stderr, unique per orchestrator
/// process (`pid`) so concurrent runs don't collide.
pub fn stderr_capture_path(shard: usize) -> PathBuf {
    std::env::temp_dir().join(format!("dco-shard-{}-w{shard}.stderr", std::process::id()))
}

/// Spawns one worker running `program args…` with framed stdio.
pub fn spawn_worker_with_program(
    program: &Path,
    args: &[String],
    shard: usize,
) -> io::Result<WorkerProc> {
    let stderr_path = stderr_capture_path(shard);
    let stderr_file = File::create(&stderr_path)?;
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::from(stderr_file))
        .spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    Ok(WorkerProc {
        child,
        link: PipeLink::new(stdout, stdin),
        shard,
        stderr_path,
    })
}

/// Spawns one worker as a re-exec of the current binary.
pub fn spawn_worker(args: &[String], shard: usize) -> io::Result<WorkerProc> {
    let exe = std::env::current_exe()?;
    spawn_worker_with_program(&exe, args, shard)
}

impl WorkerProc {
    /// Waits for a finished worker and cleans up its stderr capture.
    ///
    /// Call after the orchestrator has collected the worker's `RESULT`
    /// frame; a nonzero exit at that point still fails the run.
    pub fn finish(mut self) -> io::Result<()> {
        // Close our end of the child's stdin so it can't block on reads.
        drop(self.link);
        let status = self.child.wait()?;
        let tail = read_tail(&self.stderr_path);
        let _ = fs::remove_file(&self.stderr_path);
        if !status.success() {
            return Err(io::Error::other(format!(
                "shard {} worker exited with {status}{}",
                self.shard,
                fmt_stderr(&tail)
            )));
        }
        Ok(())
    }
}

/// Kills and reaps the whole pool after `cause`, folding each dead worker's
/// exit status and captured stderr into the returned error.
///
/// Killing before waiting guarantees no hang: a worker blocked on a pipe
/// whose peer died would otherwise wait forever.
pub fn reap_failure(workers: Vec<WorkerProc>, cause: io::Error) -> io::Error {
    let mut detail = format!("sharded run failed: {cause}");
    for mut w in workers {
        // Drop the link first: closes the child's stdin, unblocking reads.
        drop(w.link);
        let _ = w.child.kill();
        match w.child.wait() {
            Ok(status) if !status.success() => {
                let tail = read_tail(&w.stderr_path);
                detail.push_str(&format!(
                    "\n  shard {}: exited with {status}{}",
                    w.shard,
                    fmt_stderr(&tail)
                ));
            }
            Ok(_) => {}
            Err(e) => detail.push_str(&format!("\n  shard {}: wait failed: {e}", w.shard)),
        }
        let _ = fs::remove_file(&w.stderr_path);
    }
    io::Error::new(cause.kind(), detail)
}

/// Last few KB of a worker's captured stderr (panics print at the end).
fn read_tail(path: &Path) -> String {
    const TAIL: usize = 8 * 1024;
    let mut buf = String::new();
    if File::open(path)
        .and_then(|mut f| f.read_to_string(&mut buf))
        .is_err()
    {
        return String::new();
    }
    let start = buf.len().saturating_sub(TAIL);
    // Don't split a UTF-8 char.
    let start = (start..buf.len())
        .find(|&i| buf.is_char_boundary(i))
        .unwrap_or(0);
    buf[start..].trim_end().to_string()
}

fn fmt_stderr(tail: &str) -> String {
    if tail.is_empty() {
        String::new()
    } else {
        format!("; stderr:\n    {}", tail.replace('\n', "\n    "))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::link::FrameLink;

    /// A worker that writes to stderr and dies with a nonzero status: the
    /// orchestrator side must observe EOF (not hang), and reaping must
    /// surface the exit status and the stderr text.
    #[test]
    fn crashed_worker_is_reaped_with_stderr_surfaced() {
        let mut w = spawn_worker_with_program(
            Path::new("/bin/sh"),
            &["-c".to_string(), "echo boom >&2; exit 3".to_string()],
            0,
        )
        .unwrap();
        let eof = w.link.recv().unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
        let err = reap_failure(vec![w], eof);
        let msg = err.to_string();
        assert!(msg.contains("shard 0"), "{msg}");
        assert!(
            msg.contains("exit status: 3") || msg.contains("exit code: 3"),
            "{msg}"
        );
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn healthy_worker_finishes_cleanly() {
        let mut w = spawn_worker_with_program(
            Path::new("/bin/sh"),
            &["-c".to_string(), "cat >/dev/null".to_string()],
            1,
        )
        .unwrap();
        // `cat` exits when our end of its stdin closes inside finish().
        w.link.flush().unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn failing_exit_status_fails_finish_even_after_result() {
        let w = spawn_worker_with_program(
            Path::new("/bin/sh"),
            &["-c".to_string(), "echo tail-error >&2; exit 1".to_string()],
            2,
        )
        .unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("tail-error"), "{err}");
    }
}
