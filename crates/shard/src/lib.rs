//! # dco-shard — one simulation across K worker processes
//!
//! This crate runs a single deterministic simulation partitioned across `K`
//! OS processes. The node ID space is split into `K` contiguous ring arcs
//! ([`partition`]); each worker owns one arc and runs the unmodified
//! `dco-sim` engine over the *whole* membership script, dispatching only the
//! events whose subject it owns (foreign joins/leaves flip shadow alive
//! bits). Messages addressed to a foreign arc are intercepted by the engine
//! and exchanged in batched **epochs**.
//!
//! ## Conservative lookahead
//!
//! The paper's network model charges a constant 50 ms one-way link latency.
//! That constant is a *lookahead bound*: a message sent at time `t` cannot
//! arrive before `t + L`. Workers therefore advance in lockstep windows of
//! exactly `L`: every event in `[eL, (e+1)L)` is dispatched before any
//! cross-worker message sent in that window could matter, because such a
//! message arrives at `≥ (e+1)L` — always in a *later* window. One exchange
//! barrier per window is sufficient for full causal correctness; no
//! rollback, no null messages.
//!
//! ## Pieces
//!
//! * [`frame`] — length-prefixed binary frames over any byte stream.
//! * [`link`] — [`link::FrameLink`]: process pipes or in-memory channels.
//! * [`partition`] — contiguous ring arcs → `node → shard` map.
//! * [`epoch`] — the worker loop and the orchestrator relay loop.
//! * [`procpool`] — spawn/reap worker processes with captured stderr.
//!
//! The crate depends only on `dco-sim` (and the standard library): protocol
//! messages cross process boundaries via `dco_sim::wire::WireCodec`, so any
//! protocol with a codec for its `Msg` type can run sharded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod frame;
pub mod link;
pub mod partition;
pub mod procpool;
