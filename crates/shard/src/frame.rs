//! Length-prefixed binary frames.
//!
//! One frame = `u32` little-endian length (of everything after the prefix),
//! then a 1-byte tag, then the payload. The length covers `tag + payload`,
//! so it is always ≥ 1; a zero length or one beyond [`MAX_FRAME`] means the
//! stream is corrupt and is rejected rather than allocated.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's `tag + payload` size (1 GiB).
///
/// At N = 100k the largest real frames are per-epoch cross-shard batches
/// and the final per-worker result summary (tens of MB); anything near a
/// gigabyte is a corrupt length prefix, not data.
pub const MAX_FRAME: usize = 1 << 30;

/// Writes one frame. Does not flush — callers batch frames and flush at
/// epoch boundaries.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload
        .len()
        .checked_add(1)
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)
}

/// Reads one frame, returning `(tag, payload)`.
///
/// A clean EOF before the length prefix — the peer exited — surfaces as
/// [`io::ErrorKind::UnexpectedEof`]; callers treat that as a dead worker.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut payload = vec![0u8; len - 1];
    r.read_exact(&mut payload)?;
    Ok((tag[0], payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        write_frame(&mut buf, 9, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), (9, Vec::new()));
        assert!(r.is_empty());
    }

    #[test]
    fn eof_at_frame_boundary_is_unexpected_eof() {
        let mut r: &[u8] = &[];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"payload").unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_lengths_are_rejected() {
        // Zero length (cannot even hold the tag byte).
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Length beyond MAX_FRAME must be rejected before allocation.
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
