//! Transports for the epoch protocol.
//!
//! The orchestrator and its workers speak [`frame`](crate::frame)s over a
//! [`FrameLink`]. Two implementations:
//!
//! * [`PipeLink`] — buffered reader/writer over any byte stream; the real
//!   deployment wraps a child process's stdin/stdout.
//! * [`ChannelLink`] — in-memory `mpsc` pair for thread-based workers, used
//!   by the shard-count invariance tests so `cargo test` exercises the full
//!   epoch protocol without spawning processes.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::sync::mpsc;

use crate::frame::{read_frame, write_frame};

/// A bidirectional, ordered frame transport.
pub trait FrameLink {
    /// Queues one frame for the peer.
    fn send(&mut self, tag: u8, payload: &[u8]) -> io::Result<()>;
    /// Makes all queued frames visible to the peer.
    fn flush(&mut self) -> io::Result<()>;
    /// Blocks for the next frame. A dead peer yields
    /// [`io::ErrorKind::UnexpectedEof`].
    fn recv(&mut self) -> io::Result<(u8, Vec<u8>)>;
}

impl<T: FrameLink + ?Sized> FrameLink for &mut T {
    fn send(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        (**self).send(tag, payload)
    }
    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
    fn recv(&mut self) -> io::Result<(u8, Vec<u8>)> {
        (**self).recv()
    }
}

/// Pipe capacity on Linux is 64 KiB; a 1 MiB userspace buffer keeps epoch
/// batches to a handful of `write` syscalls.
const BUF_CAP: usize = 1 << 20;

/// [`FrameLink`] over a byte-stream pair (process pipes, sockets, files).
pub struct PipeLink<R: Read, W: Write> {
    r: BufReader<R>,
    w: BufWriter<W>,
}

impl<R: Read, W: Write> PipeLink<R, W> {
    /// Wraps a reader/writer pair in epoch-sized buffers.
    pub fn new(r: R, w: W) -> Self {
        PipeLink {
            r: BufReader::with_capacity(BUF_CAP, r),
            w: BufWriter::with_capacity(BUF_CAP, w),
        }
    }
}

impl<R: Read, W: Write> FrameLink for PipeLink<R, W> {
    fn send(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.w, tag, payload)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
    fn recv(&mut self) -> io::Result<(u8, Vec<u8>)> {
        read_frame(&mut self.r)
    }
}

/// In-memory [`FrameLink`] half; see [`channel_pair`].
pub struct ChannelLink {
    tx: mpsc::Sender<(u8, Vec<u8>)>,
    rx: mpsc::Receiver<(u8, Vec<u8>)>,
}

/// Two connected in-memory link halves (A↔B), for thread-based workers.
pub fn channel_pair() -> (ChannelLink, ChannelLink) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        ChannelLink { tx: a_tx, rx: a_rx },
        ChannelLink { tx: b_tx, rx: b_rx },
    )
}

impl FrameLink for ChannelLink {
    fn send(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send((tag, payload.to_vec()))
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"))
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn recv(&mut self) -> io::Result<(u8, Vec<u8>)> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_link_round_trips_through_a_buffer() {
        let mut wire = Vec::new();
        {
            let mut l = PipeLink::new(io::empty(), &mut wire);
            l.send(3, b"abc").unwrap();
            l.send(4, b"").unwrap();
            l.flush().unwrap();
        }
        let mut l = PipeLink::new(&wire[..], io::sink());
        assert_eq!(l.recv().unwrap(), (3, b"abc".to_vec()));
        assert_eq!(l.recv().unwrap(), (4, Vec::new()));
        assert_eq!(
            l.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof,
            "stream end reads as a dead peer"
        );
    }

    #[test]
    fn channel_pair_is_bidirectional_and_detects_hangup() {
        let (mut a, mut b) = channel_pair();
        a.send(1, b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), (1, b"ping".to_vec()));
        b.send(2, b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), (2, b"pong".to_vec()));
        drop(b);
        assert_eq!(a.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }
}
