//! The epoch commit protocol: worker loop and orchestrator relay.
//!
//! Time is cut into windows of width `L` (the lookahead — the network's
//! constant one-way latency). One epoch `e` covers `[eL, (e+1)L)`:
//!
//! 1. every worker runs all of its events **strictly before** `(e+1)L`;
//! 2. each worker flushes its cross-shard outbox, grouped per destination
//!    shard, and signals `EPOCH_DONE`;
//! 3. the orchestrator, once *all* workers are done, forwards each batch to
//!    its destination verbatim (`INJECT`) and releases the next window
//!    (`EPOCH_GO`).
//!
//! Safety: a message sent inside window `e` carries an arrival time
//! `≥ (e+1)L`, so delivering it any time before window `e+1` opens is
//! causally safe — the barrier at the window edge is the only
//! synchronisation needed.
//!
//! After the last full window each worker runs the residual `(kL, horizon]`
//! slice (inclusive of the horizon, matching single-process `run_until`)
//! and returns an opaque `RESULT` payload produced by the caller.
//!
//! The orchestrator never decodes protocol messages: a `MSGS` frame is
//! `[dest_shard u8][encoded batch]` and the batch bytes are forwarded
//! untouched, so relay cost is independent of message complexity.

use std::collections::BTreeMap;
use std::io;

use dco_sim::engine::{Protocol, RemoteMsg, Simulator};
use dco_sim::time::{SimDuration, SimTime};
use dco_sim::wire::{decode_exact, WireCodec};

use crate::link::FrameLink;

/// Frame tags of the epoch protocol.
pub mod tag {
    /// Worker → orchestrator: `[dest_shard u8][Vec<RemoteMsg> bytes]`.
    pub const MSGS: u8 = 1;
    /// Worker → orchestrator: epoch barrier reached (`u64` epoch number).
    pub const EPOCH_DONE: u8 = 2;
    /// Orchestrator → worker: one forwarded batch (`Vec<RemoteMsg>` bytes).
    pub const INJECT: u8 = 3;
    /// Orchestrator → worker: all peers reached the barrier; run the next
    /// window (`u64` epoch number).
    pub const EPOCH_GO: u8 = 4;
    /// Worker → orchestrator: final opaque result summary.
    pub const RESULT: u8 = 5;
}

fn proto_err(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Drives one worker's share of the run, then sends `finish`'s bytes as the
/// `RESULT` frame.
///
/// `sim` must already have sharding enabled (which pins `lookahead` to the
/// network's constant latency) and the full membership script installed.
pub fn run_worker<P, L, F>(
    sim: &mut Simulator<P>,
    horizon: SimTime,
    lookahead: SimDuration,
    link: &mut L,
    finish: F,
) -> io::Result<()>
where
    P: Protocol,
    P::Msg: WireCodec,
    L: FrameLink,
    F: FnOnce(&mut Simulator<P>) -> Vec<u8>,
{
    assert!(lookahead > SimDuration::ZERO, "lookahead must be positive");
    let window = lookahead.as_micros();
    let mut epoch: u64 = 0;
    loop {
        let end_us = (epoch + 1).checked_mul(window).expect("epoch overflow");
        let end = SimTime::from_micros(end_us);
        if end > horizon {
            break;
        }
        sim.run_before(end);

        // Group the outbox per destination shard so the orchestrator can
        // relay each batch without decoding it. BTreeMap: deterministic
        // frame order.
        let outbox: Vec<RemoteMsg<P::Msg>> = sim.drain_shard_outbox().collect();
        let mut by_dest: BTreeMap<u8, Vec<RemoteMsg<P::Msg>>> = BTreeMap::new();
        for m in outbox {
            let dest = sim.shard_of(m.to).expect("sharding enabled");
            by_dest.entry(dest).or_default().push(m);
        }
        for (dest, batch) in &by_dest {
            let mut payload = vec![*dest];
            batch.encode(&mut payload);
            link.send(tag::MSGS, &payload)?;
        }
        link.send(tag::EPOCH_DONE, &epoch.to_le_bytes())?;
        link.flush()?;

        // Absorb forwarded batches until the orchestrator opens the next
        // window.
        loop {
            let (t, p) = link.recv()?;
            match t {
                tag::INJECT => {
                    let batch: Vec<RemoteMsg<P::Msg>> =
                        decode_exact(&p).map_err(|e| proto_err(format!("bad inject: {e}")))?;
                    for m in batch {
                        sim.inject_remote(m);
                    }
                }
                tag::EPOCH_GO => {
                    let got = u64::from_le_bytes(
                        p.try_into()
                            .map_err(|_| proto_err("bad EPOCH_GO payload"))?,
                    );
                    if got != epoch {
                        return Err(proto_err(format!("epoch desync: at {epoch}, go {got}")));
                    }
                    break;
                }
                other => return Err(proto_err(format!("unexpected tag {other} awaiting GO"))),
            }
        }
        epoch += 1;
    }

    // Residual slice after the last full window. Any message sent here has
    // an arrival time strictly past the horizon on every shard, so no final
    // exchange is needed — both sides leave it unprocessed, exactly like a
    // single-process run.
    sim.run_until(horizon);
    let result = finish(sim);
    link.send(tag::RESULT, &result)?;
    link.flush()
}

/// What the orchestrator observed while relaying one run.
#[derive(Debug)]
pub struct RelayReport {
    /// Final `RESULT` payload of each worker, indexed by shard.
    pub results: Vec<Vec<u8>>,
    /// Number of epoch barriers (full lookahead windows) crossed.
    pub epochs: u64,
    /// Cross-shard batch frames forwarded.
    pub forwarded_batches: u64,
    /// Total bytes of forwarded batch payloads.
    pub forwarded_bytes: u64,
}

/// Relays epochs between `links[shard]` workers until every worker returns
/// its `RESULT`.
///
/// Any worker failure (dead pipe, protocol violation, desync) aborts the
/// relay with an error naming the shard; the caller is responsible for
/// reaping processes (see [`crate::procpool`]).
pub fn run_orchestrator<L: FrameLink>(links: &mut [L]) -> io::Result<RelayReport> {
    let k = links.len();
    let mut results: Vec<Option<Vec<u8>>> = (0..k).map(|_| None).collect();
    let mut report = RelayReport {
        results: Vec::new(),
        epochs: 0,
        forwarded_batches: 0,
        forwarded_bytes: 0,
    };
    let shard_err =
        |shard: usize, e: io::Error| io::Error::new(e.kind(), format!("shard {shard}: {e}"));
    loop {
        // pending[dest] = batch payloads to forward once the barrier closes.
        let mut pending: Vec<Vec<Vec<u8>>> = (0..k).map(|_| Vec::new()).collect();
        let mut at_barrier = 0usize;
        let mut finished = 0usize;
        for (shard, link) in links.iter_mut().enumerate() {
            if results[shard].is_some() {
                return Err(proto_err(format!(
                    "shard {shard} finished while others still run epochs"
                )));
            }
            loop {
                let (t, p) = link.recv().map_err(|e| shard_err(shard, e))?;
                match t {
                    tag::MSGS => {
                        let dest = *p
                            .first()
                            .ok_or_else(|| proto_err(format!("shard {shard}: empty MSGS")))?
                            as usize;
                        if dest >= k || dest == shard {
                            return Err(proto_err(format!(
                                "shard {shard}: bad destination {dest}"
                            )));
                        }
                        report.forwarded_batches += 1;
                        report.forwarded_bytes += (p.len() - 1) as u64;
                        pending[dest].push(p[1..].to_vec());
                    }
                    tag::EPOCH_DONE => {
                        let got = u64::from_le_bytes(p.try_into().map_err(|_| {
                            proto_err(format!("shard {shard}: bad EPOCH_DONE payload"))
                        })?);
                        if got != report.epochs {
                            return Err(proto_err(format!(
                                "shard {shard}: at epoch {got}, relay at {}",
                                report.epochs
                            )));
                        }
                        at_barrier += 1;
                        break;
                    }
                    tag::RESULT => {
                        results[shard] = Some(p);
                        finished += 1;
                        break;
                    }
                    other => {
                        return Err(proto_err(format!("shard {shard}: unexpected tag {other}")))
                    }
                }
            }
        }
        if finished == k {
            report.results = results
                .into_iter()
                .map(|r| r.expect("all finished"))
                .collect();
            return Ok(report);
        }
        if at_barrier != k {
            // Same script + same horizon ⇒ same epoch count everywhere; a
            // mixed barrier means a worker diverged.
            return Err(proto_err(format!(
                "epoch desync: {at_barrier}/{k} at barrier, {finished} finished"
            )));
        }
        for (dest, batches) in pending.into_iter().enumerate() {
            for b in batches {
                links[dest]
                    .send(tag::INJECT, &b)
                    .map_err(|e| shard_err(dest, e))?;
            }
        }
        let epoch_bytes = report.epochs.to_le_bytes();
        for (shard, link) in links.iter_mut().enumerate() {
            link.send(tag::EPOCH_GO, &epoch_bytes)
                .and_then(|()| link.flush())
                .map_err(|e| shard_err(shard, e))?;
        }
        report.epochs += 1;
    }
}

/// Encodes one cross-shard batch exactly as [`run_worker`] frames it:
/// `[dest u8][u32 count][messages…]`. Exposed for tests.
pub fn encode_batch<M: WireCodec>(dest: u8, batch: &[RemoteMsg<M>]) -> Vec<u8> {
    let mut payload = vec![dest];
    // Slices encode like Vec: u32 count then elements.
    (batch.len() as u32).encode(&mut payload);
    for m in batch {
        m.encode(&mut payload);
    }
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{channel_pair, ChannelLink};
    use dco_sim::engine::Ctx;
    use dco_sim::net::NetConfig;
    use dco_sim::node::NodeId;
    use dco_sim::prelude::NodeCaps;
    use dco_sim::rng::splitmix64;
    use dco_sim::wire::{encode_to_vec, WireReader};
    use std::thread;

    /// Minimal protocol exercising the full frame path: every node pings its
    /// clockwise neighbour each 100 ms and node 0 broadcasts to everyone.
    struct Ring {
        n: u32,
        received: u64,
        /// Order-independent message digest (each delivery is owned by
        /// exactly one shard, so per-shard sums add up to the global sum).
        checksum: u64,
    }

    impl Protocol for Ring {
        type Msg = u32;
        type Timer = ();
        fn on_join(&mut self, node: NodeId, ctx: &mut Ctx<'_, Self>) {
            ctx.set_timer(node, SimDuration::from_millis(100), ());
        }
        fn on_message(&mut self, node: NodeId, from: NodeId, msg: u32, _ctx: &mut Ctx<'_, Self>) {
            self.received += 1;
            let word = u64::from(node.0) << 40 | u64::from(from.0) << 20 | u64::from(msg);
            self.checksum = self.checksum.wrapping_add(splitmix64(word));
        }
        fn on_timer(&mut self, node: NodeId, _t: (), ctx: &mut Ctx<'_, Self>) {
            let next = NodeId((node.0 + 1) % self.n);
            ctx.send_control(node, next, node.0, "ping");
            if node == NodeId(0) {
                for peer in 1..self.n {
                    ctx.send_control(node, NodeId(peer), 0xB00 + peer, "bcast");
                }
            }
            ctx.set_timer(node, SimDuration::from_millis(100), ());
        }
    }

    fn build(map: Vec<u8>, me: u8, k: u8, n: u32) -> Simulator<Ring> {
        let mut sim = Simulator::new(
            Ring {
                n,
                received: 0,
                checksum: 0,
            },
            NetConfig::paper_model(),
            7,
        );
        for _ in 0..n {
            sim.add_node(NodeCaps::peer_default());
        }
        sim.enable_sharding(map, me, k);
        for id in 0..n {
            sim.schedule_join(NodeId(id), SimTime::ZERO);
        }
        sim
    }

    /// Full worker/orchestrator protocol over in-memory links, K threads.
    fn run_k(k: u8) -> (u64, u64, u64, u64) {
        let n = 12u32;
        let horizon = SimTime::from_micros(2_030_000); // not a window multiple
        let lookahead = SimDuration::from_millis(50);
        let map: Vec<u8> = (0..n).map(|id| (id % u32::from(k)) as u8).collect();
        let mut orch_links: Vec<ChannelLink> = Vec::new();
        let mut handles = Vec::new();
        for me in 0..k {
            let (orch_side, worker_side) = channel_pair();
            orch_links.push(orch_side);
            let map = map.clone();
            handles.push(thread::spawn(move || {
                let mut link = worker_side;
                let mut sim = build(map, me, k, n);
                run_worker(&mut sim, horizon, lookahead, &mut link, |sim| {
                    let stats = sim.shard_stats().unwrap();
                    let mut out = Vec::new();
                    stats.set_digest.encode(&mut out);
                    stats.owned_events.encode(&mut out);
                    sim.protocol().received.encode(&mut out);
                    sim.protocol().checksum.encode(&mut out);
                    out
                })
                .unwrap();
            }));
        }
        let report = run_orchestrator(&mut orch_links).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let (mut root, mut events, mut received, mut checksum) = (0u64, 0u64, 0u64, 0u64);
        for r in &report.results {
            let mut rd = WireReader::new(r);
            root = root.wrapping_add(rd.get::<u64>().unwrap());
            events += rd.get::<u64>().unwrap();
            received += rd.get::<u64>().unwrap();
            checksum = checksum.wrapping_add(rd.get::<u64>().unwrap());
            assert!(rd.is_empty());
        }
        assert_eq!(report.epochs, 40, "2.03 s / 50 ms = 40 full windows");
        if k > 1 {
            assert!(report.forwarded_batches > 0, "cross-shard traffic exists");
        }
        (root, events, received, checksum)
    }

    #[test]
    fn worker_orchestrator_protocol_is_shard_count_invariant() {
        let one = run_k(1);
        let two = run_k(2);
        let three = run_k(3);
        assert_eq!(one, two);
        assert_eq!(one, three);
        assert!(one.2 > 400, "messages actually flowed: {}", one.2);
    }

    #[test]
    fn dead_worker_surfaces_as_eof_not_hang() {
        let (mut orch_side, worker_side) = channel_pair();
        drop(worker_side); // worker "crashed" before its first barrier
        let err = run_orchestrator(std::slice::from_mut(&mut orch_side)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("shard 0"), "{err}");
    }

    #[test]
    fn encode_batch_matches_vec_encoding() {
        let batch = vec![
            RemoteMsg {
                at: SimTime::from_micros(123),
                key: 456u128,
                from: NodeId(1),
                to: NodeId(2),
                msg: 9u32,
            },
            RemoteMsg {
                at: SimTime::from_micros(999),
                key: 1u128 << 100,
                from: NodeId(3),
                to: NodeId(4),
                msg: 0u32,
            },
        ];
        let framed = encode_batch(2, &batch);
        assert_eq!(framed[0], 2);
        assert_eq!(framed[1..], encode_to_vec(&batch)[..]);
        let back: Vec<RemoteMsg<u32>> = decode_exact(&framed[1..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].key, 1u128 << 100);
    }
}
