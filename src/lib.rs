//! # dco — facade crate
//!
//! Re-exports the whole DCO workspace under one roof. See the README for a
//! tour; the sub-crates are:
//!
//! * [`sim`] — deterministic discrete-event network simulator.
//! * [`dht`] — Chord DHT (IDs, finger tables, routing, churn handling).
//! * [`core`] — the DCO protocol itself (coordinators, chunk indices,
//!   chunk-sharing algorithm, prefetch window, longevity model).
//! * [`baselines`] — pull-mesh, push-mesh and tree comparators from the
//!   paper's evaluation.
//! * [`workload`] — scenario/churn generation.
//! * [`metrics`] — mesh delay, fill ratio, overhead, chunks-received.

#![forbid(unsafe_code)]

pub use dco_baselines as baselines;
pub use dco_core as core;
pub use dco_dht as dht;
pub use dco_metrics as metrics;
pub use dco_sim as sim;
pub use dco_workload as workload;
